"""Catalog-lifetime session cache: byte-identity and invalidation.

The :class:`~repro.service.session.OptimizerSession` subsystem reuses scan
choices, join costs, derived properties, and whole partition-enumeration
recipes across DAG builds.  Like every fast path in this repo, it is locked
to the memo-free reference builder (``DagBuilder(..., memoize=False)``,
exposed as ``MQOptimizer._build_reference``) via
:func:`tests.generators.dag_fingerprint`:

* cold build == reference, warm rebuild == reference (same batch);
* shifted overlapping batches on a *shared* session == their own reference
  (this is where identity-keying earns its keep: the same canonical key can
  carry differently-ordered float folds in different batches);
* post-invalidation rebuilds == a reference built against the *mutated*
  catalog — and != the pre-mutation DAG, which is exactly the check that a
  stale-cache bug (serving pre-mutation properties) would trip.

Invalidation granularity is tested directly against the cache tables:
statistics mutations evict only entries depending on the mutated relation,
schema changes clear everything.
"""

import pytest

from repro import Algorithm, MQOptimizer, OptimizerSession, Query, SessionCache
from repro.catalog import psp_catalog, tpcd_catalog
from repro.catalog.catalog import CatalogError
from repro.catalog.schema import make_table
from repro.dag.builder import DagBuilder
from repro.workloads.batch import batched_queries
from repro.workloads.scaleup import component_query, scaleup_queries
from tests.generators import dag_fingerprint, random_query_workload


# ---------------------------------------------------------------------------
# Catalog epochs and statistics versioning
# ---------------------------------------------------------------------------

class TestCatalogEpochs:
    def test_add_table_is_a_schema_change(self):
        catalog = psp_catalog(relation_count=3)
        stats_epoch = catalog.statistics_epoch
        schema_epoch = catalog.schema_epoch
        version = catalog.stats_version("psp1")
        catalog.add_table(make_table("extra", 10, [("x", 8, 5)]))
        assert catalog.statistics_epoch > stats_epoch
        assert catalog.schema_epoch > schema_epoch
        assert catalog.stats_version("extra") == 1
        assert catalog.stats_version("psp1") == version

    def test_update_statistics_is_stats_only_and_targeted(self):
        catalog = psp_catalog(relation_count=3)
        schema_epoch = catalog.schema_epoch
        stats_epoch = catalog.statistics_epoch
        before = catalog.table("psp2")
        updated = catalog.update_statistics(
            "psp2", row_count=123, distinct={"num": 7}, bounds={"p": (1, 2)}
        )
        assert catalog.schema_epoch == schema_epoch
        assert catalog.statistics_epoch == stats_epoch + 1
        assert catalog.stats_version("psp2") == 2  # 1 from add_table
        assert catalog.stats_version("psp1") == 1
        assert updated.row_count == 123
        assert updated.column("num").distinct == 7
        assert (updated.column("p").low, updated.column("p").high) == (1, 2)
        # Schema is preserved: same columns, widths, indexes.
        assert updated.column_names() == before.column_names()
        assert updated.column("sp").width == before.column("sp").width
        assert updated.indexes == before.indexes
        assert catalog.table("psp2") is updated

    def test_update_statistics_rejects_unknown_names(self):
        catalog = psp_catalog(relation_count=2)
        with pytest.raises(CatalogError):
            catalog.update_statistics("nope", row_count=1)
        with pytest.raises(CatalogError):
            catalog.update_statistics("psp1", distinct={"nope": 1})


# ---------------------------------------------------------------------------
# Byte-identity of session-backed builds against the reference builder
# ---------------------------------------------------------------------------

class TestWarmRebuildOracle:
    def test_cold_and_warm_match_reference(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        reference = dag_fingerprint(optimizer._build_reference(queries))
        assert dag_fingerprint(session.build_dag(queries)) == reference  # cold
        assert dag_fingerprint(session.build_dag(queries)) == reference  # warm
        assert dag_fingerprint(session.build_dag(queries)) == reference  # warm again
        stats = session.cache_stats()
        assert stats.builds == 3 and stats.hits > 0

    def test_shifted_overlapping_batches_share_one_session(self):
        """Overlapping-but-different batches must each equal their own
        reference even though they reuse each other's fragments."""
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        batches = [
            scaleup_queries(2),                                       # SQ1..SQ6
            [q for c in range(3, 9) for q in component_query(c)],     # SQ3..SQ8
            scaleup_queries(1),                                       # SQ1..SQ2
            scaleup_queries(2),                                       # repeat
        ]
        for index, queries in enumerate(batches):
            warm = dag_fingerprint(session.build_dag(queries))
            reference = dag_fingerprint(optimizer._build_reference(queries))
            assert warm == reference, f"batch {index}"

    def test_random_query_batches_on_shared_session(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        for seed in range(12):
            queries = random_query_workload(seed)
            assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
                optimizer._build_reference(queries)
            ), seed
        # Second sweep: everything warm, including cross-batch sharing.
        for seed in range(12):
            queries = random_query_workload(seed)
            assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
                optimizer._build_reference(queries)
            ), ("warm", seed)

    def test_tpcd_batches_with_nested_queries(self):
        catalog = tpcd_catalog(1.0)
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        for index in (2, 5, 5):
            queries = batched_queries(index)
            assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
                optimizer._build_reference(queries)
            ), index

    def test_optimization_results_match_plain_optimizer(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog)
        queries = scaleup_queries(2)
        plain = optimizer.optimize_all(queries)
        warm = session.optimize_all(queries)
        rewarm = session.optimize_all(queries)
        for name in plain:
            assert plain[name].cost == warm[name].cost == rewarm[name].cost, name
            assert sorted(plain[name].plan.materialized) == sorted(
                warm[name].plan.materialized
            ), name


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------

def _deps_of_cache_entries(cache: SessionCache):
    """All relation-dependency sets currently referenced by cache entries."""
    for table in cache._catalog_dependent_caches():
        for entry in table.values():
            yield cache.deps_of(entry[-1])


class TestInvalidation:
    def test_stats_mutation_evicts_only_affected_relations(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        session.build_dag(queries)
        cache = session.cache
        before = cache.entry_count()
        touching = sum(1 for deps in _deps_of_cache_entries(cache) if "psp1" in deps)
        surviving = sum(1 for deps in _deps_of_cache_entries(cache) if "psp1" not in deps)
        assert touching > 0 and surviving > 0
        catalog.update_statistics("psp1", row_count=12_345)
        cache.sync()
        assert all("psp1" not in deps for deps in _deps_of_cache_entries(cache))
        assert cache.stats.evicted_entries == touching
        assert cache.entry_count() < before
        # Entries not touching psp1 survived.
        assert sum(1 for _ in _deps_of_cache_entries(cache)) == surviving

    def test_post_invalidation_rebuild_matches_fresh_reference(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        pre = dag_fingerprint(session.build_dag(queries))
        session.build_dag(queries)  # fully warm
        catalog.update_statistics("psp2", row_count=55_555, distinct={"num": 13})
        post = dag_fingerprint(session.build_dag(queries))
        assert post == dag_fingerprint(optimizer._build_reference(queries))
        # The mutation must be visible: serving the pre-mutation DAG (a
        # stale-cache bug) would leave the fingerprint unchanged.
        assert post != pre

    def test_stale_cache_bug_would_be_caught(self):
        """Demonstrate the regression the differential check guards against:
        mutate statistics *behind the catalog's back* (no version bump) and
        the warm rebuild serves stale pre-mutation properties, which the
        fingerprint comparison against the reference builder detects."""
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        pre = dag_fingerprint(session.build_dag(queries))
        # Bypass update_statistics: swap the table without touching epochs.
        table = catalog.table("psp2")
        catalog._tables["psp2"] = make_table(
            "psp2",
            55_555,
            [(c.name, c.width, c.distinct) for c in table.columns],
        )
        stale = dag_fingerprint(session.build_dag(queries))
        reference = dag_fingerprint(optimizer._build_reference(queries))
        assert stale == pre          # the session served stale entries...
        assert stale != reference    # ...and the differential oracle trips.

    def test_schema_change_clears_everything(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        session.build_dag(queries)
        assert session.cache.entry_count() > 0
        catalog.add_table(make_table("extra", 100, [("x", 8, 10)], primary_key="x"))
        session.cache.sync()
        assert all(
            not cache for cache in session.cache._catalog_dependent_caches()
        )
        assert session.cache.stats.schema_invalidations == 1
        assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
            optimizer._build_reference(queries)
        )

    def test_manual_invalidate(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        session.build_dag(scaleup_queries(1))
        session.invalidate("psp1")
        assert all("psp1" not in deps for deps in _deps_of_cache_entries(session.cache))
        session.invalidate()
        assert all(not c for c in session.cache._catalog_dependent_caches())

    def test_direct_fragment_invalidation_also_drops_plans(self):
        """Invalidating through the public ``session.cache`` attribute (not
        the façade's own ``invalidate``) must not leave stale plans behind."""
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        queries = scaleup_queries(1)
        first = session.build_dag(queries)
        session.cache.invalidate("psp1")   # bypasses OptimizerSession.invalidate
        assert session.build_dag(queries) is not first

    def test_facade_invalidate_keeps_unrelated_plans(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        touching = scaleup_queries(1)                 # psp1..psp6
        disjoint = list(component_query(10))          # psp10..psp14
        session.build_dag(touching)
        dag_disjoint = session.build_dag(disjoint)
        session.invalidate("psp1")
        assert session.build_dag(disjoint) is dag_disjoint

    def test_pruning_and_non_pruning_builders_can_share_a_session(self):
        """The prune tag distinguishes a pruning-disabled build (tag None)
        from a pruning build where a table has no referenced columns."""
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        queries = list(component_query(1))
        for prune in (False, True, False, True):
            builder = DagBuilder(
                catalog, session=cache, prune_unreferenced_columns=prune
            )
            built = dag_fingerprint(builder.build(list(queries)))
            reference = DagBuilder(
                catalog, memoize=False, prune_unreferenced_columns=prune
            )
            assert built == dag_fingerprint(reference.build(list(queries))), prune


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_exact_repeat_returns_same_dag_object(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        queries = scaleup_queries(1)
        first = session.build_dag(queries)
        second = session.build_dag(queries)
        assert first is second
        assert session.plan_hits == 1

    def test_plan_cache_respects_batch_identity(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        base = scaleup_queries(1)
        renamed = [Query(f"{q.name}!", q.expression) for q in base]
        assert session.build_dag(base) is not session.build_dag(renamed)

    def test_stats_change_evicts_dependent_plans_only(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        touching = scaleup_queries(1)            # psp1..psp6
        disjoint = [q for q in component_query(10)]  # psp10..psp14
        dag_touching = session.build_dag(touching)
        dag_disjoint = session.build_dag(disjoint)
        catalog.update_statistics("psp1", row_count=23_456)
        assert session.build_dag(disjoint) is dag_disjoint
        assert session.build_dag(touching) is not dag_touching

    def test_cached_optimize_result_is_reused(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        queries = scaleup_queries(1)
        first = session.optimize(queries, Algorithm.GREEDY)
        second = session.optimize(queries, Algorithm.GREEDY)
        assert first is second
        other = session.optimize(queries, Algorithm.VOLCANO_SH)
        assert other is not first

    def test_mqoptimizer_session_constructor(self):
        optimizer = MQOptimizer(psp_catalog(), enable_subsumption=False)
        session = optimizer.session()
        assert isinstance(session, OptimizerSession)
        assert session.catalog is optimizer.catalog
        assert not session.enable_subsumption
        queries = scaleup_queries(1)
        assert session.optimize(queries, "greedy").cost == optimizer.optimize(
            queries, "greedy"
        ).cost


# ---------------------------------------------------------------------------
# Builder guard rails
# ---------------------------------------------------------------------------

class TestBuilderSessionGuards:
    def test_reference_builder_rejects_session(self):
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        with pytest.raises(ValueError):
            DagBuilder(catalog, memoize=False, session=cache)

    def test_session_must_match_catalog_and_cost_model(self):
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        with pytest.raises(ValueError):
            DagBuilder(psp_catalog(), session=cache)
        from repro.cost.model import CostModel

        with pytest.raises(ValueError):
            DagBuilder(catalog, cost_model=CostModel(), session=cache)

    def test_session_deps_cover_referenced_tables(self):
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        builder = DagBuilder(catalog, session=cache)
        builder.build(list(component_query(3)))  # psp3..psp7
        assert builder.session_deps() == frozenset(
            f"psp{i}" for i in range(3, 8)
        )
