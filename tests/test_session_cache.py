"""Catalog-lifetime session cache: byte-identity and invalidation.

The :class:`~repro.service.session.OptimizerSession` subsystem reuses scan
choices, join costs, derived properties, and whole partition-enumeration
recipes across DAG builds.  Like every fast path in this repo, it is locked
to the memo-free reference builder (``DagBuilder(..., memoize=False)``,
exposed as ``MQOptimizer._build_reference``) via
:func:`tests.generators.dag_fingerprint`:

* cold build == reference, warm rebuild == reference (same batch);
* shifted overlapping batches on a *shared* session == their own reference
  (this is where identity-keying earns its keep: the same canonical key can
  carry differently-ordered float folds in different batches);
* post-invalidation rebuilds == a reference built against the *mutated*
  catalog — and != the pre-mutation DAG, which is exactly the check that a
  stale-cache bug (serving pre-mutation properties) would trip.

Invalidation granularity is tested directly against the cache tables:
statistics mutations evict only entries depending on the mutated relation,
schema changes clear everything.
"""

import hashlib
import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro import Algorithm, MQOptimizer, OptimizerSession, Query, SessionCache
from repro.algebra import Relation, col
from repro.catalog import psp_catalog, tpcd_catalog
from repro.catalog.catalog import CatalogError
from repro.catalog.schema import make_table
from repro.cost.estimation import ColumnStats, LogicalProperties
from repro.dag.builder import DagBuilder
from repro.service import BoundedCache, CacheWarmer, SessionCacheLimits
from repro.workloads.batch import batched_queries
from repro.workloads.scaleup import component_query, scaleup_queries
from tests.generators import dag_fingerprint, random_query_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# Catalog epochs and statistics versioning
# ---------------------------------------------------------------------------

class TestCatalogEpochs:
    def test_add_table_is_a_schema_change(self):
        catalog = psp_catalog(relation_count=3)
        stats_epoch = catalog.statistics_epoch
        schema_epoch = catalog.schema_epoch
        version = catalog.stats_version("psp1")
        catalog.add_table(make_table("extra", 10, [("x", 8, 5)]))
        assert catalog.statistics_epoch > stats_epoch
        assert catalog.schema_epoch > schema_epoch
        assert catalog.stats_version("extra") == 1
        assert catalog.stats_version("psp1") == version

    def test_update_statistics_is_stats_only_and_targeted(self):
        catalog = psp_catalog(relation_count=3)
        schema_epoch = catalog.schema_epoch
        stats_epoch = catalog.statistics_epoch
        before = catalog.table("psp2")
        updated = catalog.update_statistics(
            "psp2", row_count=123, distinct={"num": 7}, bounds={"p": (1, 2)}
        )
        assert catalog.schema_epoch == schema_epoch
        assert catalog.statistics_epoch == stats_epoch + 1
        assert catalog.stats_version("psp2") == 2  # 1 from add_table
        assert catalog.stats_version("psp1") == 1
        assert updated.row_count == 123
        assert updated.column("num").distinct == 7
        assert (updated.column("p").low, updated.column("p").high) == (1, 2)
        # Schema is preserved: same columns, widths, indexes.
        assert updated.column_names() == before.column_names()
        assert updated.column("sp").width == before.column("sp").width
        assert updated.indexes == before.indexes
        assert catalog.table("psp2") is updated

    def test_update_statistics_rejects_unknown_names(self):
        catalog = psp_catalog(relation_count=2)
        with pytest.raises(CatalogError):
            catalog.update_statistics("nope", row_count=1)
        with pytest.raises(CatalogError):
            catalog.update_statistics("psp1", distinct={"nope": 1})


# ---------------------------------------------------------------------------
# Byte-identity of session-backed builds against the reference builder
# ---------------------------------------------------------------------------

class TestWarmRebuildOracle:
    def test_cold_and_warm_match_reference(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        reference = dag_fingerprint(optimizer._build_reference(queries))
        assert dag_fingerprint(session.build_dag(queries)) == reference  # cold
        assert dag_fingerprint(session.build_dag(queries)) == reference  # warm
        assert dag_fingerprint(session.build_dag(queries)) == reference  # warm again
        stats = session.cache_stats()
        assert stats.builds == 3 and stats.hits > 0

    def test_shifted_overlapping_batches_share_one_session(self):
        """Overlapping-but-different batches must each equal their own
        reference even though they reuse each other's fragments."""
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        batches = [
            scaleup_queries(2),                                       # SQ1..SQ6
            [q for c in range(3, 9) for q in component_query(c)],     # SQ3..SQ8
            scaleup_queries(1),                                       # SQ1..SQ2
            scaleup_queries(2),                                       # repeat
        ]
        for index, queries in enumerate(batches):
            warm = dag_fingerprint(session.build_dag(queries))
            reference = dag_fingerprint(optimizer._build_reference(queries))
            assert warm == reference, f"batch {index}"

    def test_random_query_batches_on_shared_session(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        for seed in range(12):
            queries = random_query_workload(seed)
            assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
                optimizer._build_reference(queries)
            ), seed
        # Second sweep: everything warm, including cross-batch sharing.
        for seed in range(12):
            queries = random_query_workload(seed)
            assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
                optimizer._build_reference(queries)
            ), ("warm", seed)

    def test_tpcd_batches_with_nested_queries(self):
        catalog = tpcd_catalog(1.0)
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        for index in (2, 5, 5):
            queries = batched_queries(index)
            assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
                optimizer._build_reference(queries)
            ), index

    def test_optimization_results_match_plain_optimizer(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog)
        queries = scaleup_queries(2)
        plain = optimizer.optimize_all(queries)
        warm = session.optimize_all(queries)
        rewarm = session.optimize_all(queries)
        for name in plain:
            assert plain[name].cost == warm[name].cost == rewarm[name].cost, name
            assert sorted(plain[name].plan.materialized) == sorted(
                warm[name].plan.materialized
            ), name


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------

def _deps_of_cache_entries(cache: SessionCache):
    """All relation-dependency sets currently referenced by cache entries."""
    for table in cache._catalog_dependent_caches():
        for entry in table.values():
            yield cache.deps_of(entry[-1])


class TestInvalidation:
    def test_stats_mutation_evicts_only_affected_relations(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        session.build_dag(queries)
        cache = session.cache
        before = cache.entry_count()
        touching = sum(1 for deps in _deps_of_cache_entries(cache) if "psp1" in deps)
        surviving = sum(1 for deps in _deps_of_cache_entries(cache) if "psp1" not in deps)
        assert touching > 0 and surviving > 0
        catalog.update_statistics("psp1", row_count=12_345)
        cache.sync()
        assert all("psp1" not in deps for deps in _deps_of_cache_entries(cache))
        assert cache.stats.evicted_entries == touching
        assert cache.entry_count() < before
        # Entries not touching psp1 survived.
        assert sum(1 for _ in _deps_of_cache_entries(cache)) == surviving

    def test_post_invalidation_rebuild_matches_fresh_reference(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        pre = dag_fingerprint(session.build_dag(queries))
        session.build_dag(queries)  # fully warm
        catalog.update_statistics("psp2", row_count=55_555, distinct={"num": 13})
        post = dag_fingerprint(session.build_dag(queries))
        assert post == dag_fingerprint(optimizer._build_reference(queries))
        # The mutation must be visible: serving the pre-mutation DAG (a
        # stale-cache bug) would leave the fingerprint unchanged.
        assert post != pre

    def test_stale_cache_bug_would_be_caught(self):
        """Regression test for the PR 7 identity-keying bug class: mutate
        statistics *behind the catalog's back* (no epoch or version bump) and
        the warm rebuild must still match the post-mutation reference.  Sync
        compares per-relation statistics *content digests* every build, and
        leaf cache keys embed the digest, so the swapped table is treated
        exactly like a declared update.  (Until PR 7 this test demonstrated
        the bug — the identity-keyed session served stale pre-mutation
        properties; a pinned reduction of that failure lives on as
        ``tests/analysis_fixtures/historical_pr7.py``.)"""
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        pre = dag_fingerprint(session.build_dag(queries))
        # Bypass update_statistics: swap the table without touching epochs.
        table = catalog.table("psp2")
        catalog._tables["psp2"] = make_table(
            "psp2",
            55_555,
            [(c.name, c.width, c.distinct) for c in table.columns],
        )
        rebuilt = dag_fingerprint(session.build_dag(queries))
        reference = dag_fingerprint(optimizer._build_reference(queries))
        assert rebuilt == reference  # the mutation was picked up...
        assert rebuilt != pre        # ...and it is visible in the result.
        # The digest comparison accounted it as a statistics invalidation
        # even though no epoch moved.
        assert session.cache.stats.stats_invalidations >= 1

    def test_schema_change_clears_everything(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        session.build_dag(queries)
        assert session.cache.entry_count() > 0
        catalog.add_table(make_table("extra", 100, [("x", 8, 10)], primary_key="x"))
        session.cache.sync()
        assert all(
            not cache for cache in session.cache._catalog_dependent_caches()
        )
        assert session.cache.stats.schema_invalidations == 1
        assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
            optimizer._build_reference(queries)
        )

    def test_manual_invalidate(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        session.build_dag(scaleup_queries(1))
        session.invalidate("psp1")
        assert all("psp1" not in deps for deps in _deps_of_cache_entries(session.cache))
        session.invalidate()
        assert all(not c for c in session.cache._catalog_dependent_caches())

    def test_direct_fragment_invalidation_also_drops_plans(self):
        """Invalidating through the public ``session.cache`` attribute (not
        the façade's own ``invalidate``) must not leave stale plans behind."""
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        queries = scaleup_queries(1)
        first = session.build_dag(queries)
        session.cache.invalidate("psp1")   # bypasses OptimizerSession.invalidate
        assert session.build_dag(queries) is not first

    def test_facade_invalidate_keeps_unrelated_plans(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        touching = scaleup_queries(1)                 # psp1..psp6
        disjoint = list(component_query(10))          # psp10..psp14
        session.build_dag(touching)
        dag_disjoint = session.build_dag(disjoint)
        session.invalidate("psp1")
        assert session.build_dag(disjoint) is dag_disjoint

    def test_pruning_and_non_pruning_builders_can_share_a_session(self):
        """The prune tag distinguishes a pruning-disabled build (tag None)
        from a pruning build where a table has no referenced columns."""
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        queries = list(component_query(1))
        for prune in (False, True, False, True):
            builder = DagBuilder(
                catalog, session=cache, prune_unreferenced_columns=prune
            )
            built = dag_fingerprint(builder.build(list(queries)))
            reference = DagBuilder(
                catalog, memoize=False, prune_unreferenced_columns=prune
            )
            assert built == dag_fingerprint(reference.build(list(queries))), prune


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_exact_repeat_returns_same_dag_object(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        queries = scaleup_queries(1)
        first = session.build_dag(queries)
        second = session.build_dag(queries)
        assert first is second
        assert session.plan_hits == 1

    def test_plan_cache_respects_batch_identity(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        base = scaleup_queries(1)
        renamed = [Query(f"{q.name}!", q.expression) for q in base]
        assert session.build_dag(base) is not session.build_dag(renamed)

    def test_stats_change_evicts_dependent_plans_only(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        touching = scaleup_queries(1)            # psp1..psp6
        disjoint = [q for q in component_query(10)]  # psp10..psp14
        dag_touching = session.build_dag(touching)
        dag_disjoint = session.build_dag(disjoint)
        catalog.update_statistics("psp1", row_count=23_456)
        assert session.build_dag(disjoint) is dag_disjoint
        assert session.build_dag(touching) is not dag_touching

    def test_cached_optimize_result_is_reused(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        queries = scaleup_queries(1)
        first = session.optimize(queries, Algorithm.GREEDY)
        second = session.optimize(queries, Algorithm.GREEDY)
        assert first is second
        other = session.optimize(queries, Algorithm.VOLCANO_SH)
        assert other is not first

    def test_mqoptimizer_session_constructor(self):
        optimizer = MQOptimizer(psp_catalog(), enable_subsumption=False)
        session = optimizer.session()
        assert isinstance(session, OptimizerSession)
        assert session.catalog is optimizer.catalog
        assert not session.enable_subsumption
        queries = scaleup_queries(1)
        assert session.optimize(queries, "greedy").cost == optimizer.optimize(
            queries, "greedy"
        ).cost


# ---------------------------------------------------------------------------
# Builder guard rails
# ---------------------------------------------------------------------------

class TestBuilderSessionGuards:
    def test_reference_builder_rejects_session(self):
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        with pytest.raises(ValueError):
            DagBuilder(catalog, memoize=False, session=cache)

    def test_session_must_match_catalog_and_cost_model(self):
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        with pytest.raises(ValueError):
            DagBuilder(psp_catalog(), session=cache)
        from repro.cost.model import CostModel

        with pytest.raises(ValueError):
            DagBuilder(catalog, cost_model=CostModel(), session=cache)

    def test_session_deps_cover_referenced_tables(self):
        catalog = psp_catalog()
        cache = SessionCache(catalog)
        builder = DagBuilder(catalog, session=cache)
        builder.build(list(component_query(3)))  # psp3..psp7
        assert builder.session_deps() == frozenset(
            f"psp{i}" for i in range(3, 8)
        )


# ---------------------------------------------------------------------------
# Content addressing (PR 7)
# ---------------------------------------------------------------------------

class TestContentAddressing:
    def test_equal_content_properties_share_one_interned_id(self):
        """Distinct objects with equal content intern to the same id — the
        property that makes cache keys survive pickling, LRU eviction, and
        recomputation in other processes."""
        cache = SessionCache(psp_catalog())
        stats = {col("t", "x"): ColumnStats(5.0, 8, 1.0, 9.0)}
        a = LogicalProperties(10.0, dict(stats))
        b = LogicalProperties(10.0, dict(stats))
        assert a is not b
        assert cache.props_id(a) == cache.props_id(b)
        changed = LogicalProperties(10.0, {col("t", "x"): ColumnStats(5.0, 8, 1.0, 9.5)})
        assert cache.props_id(changed) != cache.props_id(a)

    def test_content_key_is_bit_and_order_strict(self):
        """The key must be exactly as strict as the byte-identity oracle:
        ``-0.0`` vs ``0.0`` and column insertion order both change the bytes
        a DAG serializes to, so they must change the key."""
        assert LogicalProperties(0.0).content_key() != LogicalProperties(-0.0).content_key()
        x, y = col("t", "x"), col("t", "y")
        sx, sy = ColumnStats(2.0), ColumnStats(3.0)
        xy = LogicalProperties(1.0, {x: sx, y: sy})
        yx = LogicalProperties(1.0, {y: sy, x: sx})
        assert xy.content_key() != yx.content_key()

    def test_stats_digests_track_content_not_identity(self):
        """Independently constructed equal catalogs share digests; a
        statistics update moves exactly the updated relation's digest."""
        a, b = psp_catalog(), psp_catalog()
        assert a.stats_digests() == b.stats_digests()
        before = a.stats_digests()
        a.update_statistics("psp2", row_count=999)
        after = a.stats_digests()
        assert after["psp2"] != before["psp2"]
        del before["psp2"], after["psp2"]
        assert after == before


# ---------------------------------------------------------------------------
# Bounded caches (PR 7)
# ---------------------------------------------------------------------------

class TestBoundedCaches:
    def test_lru_semantics_and_eviction_counter(self):
        cache = BoundedCache(3)
        for key in "abc":
            cache[key] = key.upper()
        assert cache.get("a") == "A"      # refreshes recency of 'a'
        cache["d"] = "D"                  # evicts 'b', the oldest
        assert "b" not in cache and "a" in cache
        assert cache.evictions == 1
        assert cache.setdefault("e", "E") == "E"   # evicts 'c'
        assert "c" not in cache
        assert cache.evictions == 2
        assert list(cache) == ["a", "d", "e"]

    def test_unbounded_by_default(self):
        cache = BoundedCache(None)
        for index in range(10_000):
            cache[index] = index
        assert len(cache) == 10_000 and cache.evictions == 0

    def test_pickle_preserves_bound_order_and_counter(self):
        cache = BoundedCache(2)
        cache["a"], cache["b"], cache["c"] = 1, 2, 3   # 'a' evicted
        clone = pickle.loads(pickle.dumps(cache))
        assert isinstance(clone, BoundedCache)
        assert clone.maxsize == 2 and clone.evictions == 1
        assert list(clone.items()) == [("b", 2), ("c", 3)]
        clone["d"] = 4
        assert "b" not in clone and clone.evictions == 2

    def test_byte_identity_holds_under_tight_bounds(self):
        """Correctness never depends on residency: with capacities far below
        the working set, rebuilds still match the memo-free reference, and
        no family ever exceeds its cap."""
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        limits = SessionCacheLimits(
            base_props=8, scans=16, derived=48, join_props=48, join_ops=96,
            join_recipes=24, results=8, block_shapes=8, block_keys=16,
            weak_joins=24, implications=48,
        )
        session = OptimizerSession(catalog, cache_plans=False, limits=limits)
        batches = [
            scaleup_queries(2),
            [q for c in range(3, 9) for q in component_query(c)],
            scaleup_queries(2),
        ]
        for index, queries in enumerate(batches):
            assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
                optimizer._build_reference(queries)
            ), index
        stats = session.cache_stats()
        assert stats.lru_evictions > 0
        for family, size in session.cache.family_sizes().items():
            cap = getattr(limits, family)
            assert cap is not None and size <= cap, family

    def test_interner_guard_resets_and_stays_correct(self):
        catalog = psp_catalog()
        optimizer = MQOptimizer(catalog)
        limits = SessionCacheLimits(max_interned=50)
        session = OptimizerSession(catalog, cache_plans=False, limits=limits)
        queries = scaleup_queries(2)
        session.build_dag(queries)
        assert session.cache.interned_count() > 50
        # The next sync point notices the guard, resets, and the rebuild
        # (now cold again) still matches the reference.
        assert dag_fingerprint(session.build_dag(queries)) == dag_fingerprint(
            optimizer._build_reference(queries)
        )
        assert session.cache_stats().interner_resets >= 1


# ---------------------------------------------------------------------------
# Cross-process snapshots (PR 7)
# ---------------------------------------------------------------------------

class TestCrossProcessSnapshot:
    def test_from_snapshot_round_trip_is_warm(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        expected = dag_fingerprint(session.build_dag(queries))
        restored = OptimizerSession.from_snapshot(
            session.snapshot_state(), cache_plans=False
        )
        assert restored.cache.entry_count() == session.cache.entry_count()
        assert dag_fingerprint(restored.build_dag(queries)) == expected
        stats = restored.cache_stats()
        assert stats.hits > 0 and stats.misses == 0  # fully warm restore

    def test_snapshot_restores_in_a_subprocess(self, tmp_path):
        """The whole point of content addressing: a warm cache pickled here
        is byte-identically warm in a *different interpreter* (different
        object ids, different hash seed), with hit accounting to prove the
        restored entries were actually served."""
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        queries = scaleup_queries(2)
        parent_sha = hashlib.sha256(
            dag_fingerprint(session.build_dag(queries)).encode()
        ).hexdigest()
        snapshot_path = tmp_path / "session.pkl"
        snapshot_path.write_bytes(session.snapshot_state())
        script = textwrap.dedent(
            f"""\
            import hashlib, sys
            sys.path.insert(0, "src")
            sys.path.insert(0, ".")
            from repro import OptimizerSession
            from repro.workloads.scaleup import scaleup_queries
            from tests.generators import dag_fingerprint

            with open({str(snapshot_path)!r}, "rb") as handle:
                session = OptimizerSession.from_snapshot(
                    handle.read(), cache_plans=False
                )
            fingerprint = dag_fingerprint(session.build_dag(scaleup_queries(2)))
            stats = session.cache_stats()
            print(hashlib.sha256(fingerprint.encode()).hexdigest())
            print(stats.hits > 0 and stats.misses == 0)
            print(session.cache.entry_count())
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONHASHSEED="9999"),
            cwd=REPO_ROOT,
            check=True,
        )
        child_sha, warm, entries = result.stdout.split()
        assert child_sha == parent_sha
        assert warm == "True"
        assert int(entries) == session.cache.entry_count()


# ---------------------------------------------------------------------------
# Background cache warming (PR 7)
# ---------------------------------------------------------------------------

class TestCacheWarmer:
    def test_warms_fragments_before_foreground_requests(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        warmer = CacheWarmer(session)
        try:
            warmer.enqueue(scaleup_queries(2))
            warmer.flush()
            assert warmer.warmed == 1 and warmer.errors == 0
            misses_before = session.cache_stats().misses
            session.build_dag(scaleup_queries(2))
            assert session.cache_stats().misses == misses_before  # fully warm
        finally:
            warmer.close()

    def test_close_drains_and_errors_are_counted(self):
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        warmer = CacheWarmer(session)
        warmer.enqueue([Query("bad", Relation("no_such_table"))])
        warmer.enqueue(scaleup_queries(1))
        warmer.close()
        assert warmer.warmed == 1
        assert warmer.errors == 1
        assert warmer.pending() == 0
